package slo

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cxlsim/internal/obs"
	"cxlsim/internal/stats"
)

func validSpec() Spec {
	return Spec{
		Name:     "test",
		WindowMs: 10,
		Objectives: []Objective{
			{Name: "lat", Kind: KindLatency, Metric: "lat_ns", ThresholdNs: 1000, Target: 0.9},
			{Name: "avail", Kind: KindAvailability, Metric: "ok_total", BadMetric: "bad_total", Target: 0.99},
		},
		Alerts: []AlertRule{
			{Name: "lat-burn", Objective: "lat", LongWindows: 3, ShortWindows: 1, BurnRate: 2},
		},
	}
}

func TestValidateAcceptsGoodSpec(t *testing.T) {
	s := validSpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	mutate := func(fn func(*Spec)) *Spec {
		s := validSpec()
		fn(&s)
		return &s
	}
	cases := []struct {
		name string
		spec *Spec
		want string
	}{
		{"no name", mutate(func(s *Spec) { s.Name = "" }), "no name"},
		{"no objectives", mutate(func(s *Spec) { s.Objectives = nil }), "no objectives"},
		{"duplicate objective", mutate(func(s *Spec) { s.Objectives[1] = s.Objectives[0] }), "duplicate"},
		{"target 1", mutate(func(s *Spec) { s.Objectives[0].Target = 1 }), "outside (0,1)"},
		{"target 0", mutate(func(s *Spec) { s.Objectives[0].Target = 0 }), "outside (0,1)"},
		{"latency without threshold", mutate(func(s *Spec) { s.Objectives[0].ThresholdNs = 0 }), "threshold_ns"},
		{"availability without bad metric", mutate(func(s *Spec) { s.Objectives[1].BadMetric = "" }), "bad_metric"},
		{"unknown kind", mutate(func(s *Spec) { s.Objectives[0].Kind = "weird" }), "unknown kind"},
		{"alert unknown objective", mutate(func(s *Spec) { s.Alerts[0].Objective = "nope" }), "unknown objective"},
		{"short exceeds long", mutate(func(s *Spec) { s.Alerts[0].ShortWindows = 5 }), "exceeds long_windows"},
		{"zero burn rate", mutate(func(s *Spec) { s.Alerts[0].BurnRate = 0 }), "burn_rate"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if err == nil {
			t.Fatalf("%s: no error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q missing %q", tc.name, err, tc.want)
		}
	}
}

func TestLoadRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(`{
		"name": "file-spec", "window_ms": 5,
		"objectives": [{"name": "a", "kind": "availability",
			"metric": "ok_total", "bad_metric": "bad_total", "target": 0.95}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "file-spec" || s.WindowMs != 5 || len(s.Objectives) != 1 {
		t.Fatalf("loaded spec = %+v", s)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("loading a missing file did not error")
	}
}

// window fabricates a sealed snapshot: latency observations split
// good/bad around the 1000ns threshold, plus ok/bad counters.
func window(idx int64, goodLat, badLat uint64, ok, bad float64) obs.WindowSnapshot {
	ws := obs.WindowSnapshot{Index: idx, StartNs: float64(idx) * 10, EndNs: float64(idx+1) * 10}
	if goodLat+badLat > 0 {
		ws.Histograms = []obs.WindowHistogram{{
			Name:  "lat_ns",
			Count: goodLat + badLat,
			Buckets: []stats.Bucket{
				{UpperBound: 1000, Count: goodLat},
				{UpperBound: 100000, Count: badLat},
			},
		}}
	}
	if ok != 0 || bad != 0 {
		ws.Counters = []obs.WindowCounter{
			{Name: "ok_total", Delta: ok},
			{Name: "bad_total", Delta: bad},
		}
	}
	return ws
}

func TestObjectiveMeasurement(t *testing.T) {
	e := NewEvaluator(validSpec())
	res := e.Observe(window(0, 95, 5, 990, 10))

	lat := res.Objectives[0]
	if lat.Good != 95 || lat.Total != 100 || lat.GoodFraction != 0.95 {
		t.Fatalf("latency objective = %+v", lat)
	}
	if !lat.Met { // 0.95 ≥ target 0.9
		t.Fatal("latency objective not met at 95% good vs 90% target")
	}
	// burn = (1-0.95)/(1-0.9) = 0.5, up to float error
	if lat.BurnRate < 0.499 || lat.BurnRate > 0.501 {
		t.Fatalf("latency burn = %g, want ≈0.5", lat.BurnRate)
	}
	// 990/1000 sits exactly on the 0.99 target: met, burning budget at 1x.
	av := res.Objectives[1]
	if av.Good != 990 || av.Total != 1000 || !av.Met || av.BurnRate < 0.999 || av.BurnRate > 1.001 {
		t.Fatalf("availability objective = %+v, want met at burn ≈1", av)
	}

	// Below target: not met.
	below := e.Observe(window(1, 95, 5, 960, 40)).Objectives[1]
	if below.Met || below.GoodFraction != 0.96 {
		t.Fatalf("availability below target = %+v, want unmet at 0.96", below)
	}
}

func TestEmptyWindowMeetsObjectives(t *testing.T) {
	e := NewEvaluator(validSpec())
	res := e.Observe(window(0, 0, 0, 0, 0))
	for _, o := range res.Objectives {
		if !o.Met || o.GoodFraction != 1 || o.BurnRate != 0 {
			t.Fatalf("no-traffic objective = %+v, want met with burn 0", o)
		}
	}
	if res.Alerts[0].Firing {
		t.Fatal("alert firing with no traffic")
	}
}

func TestAlertFiresAndResolves(t *testing.T) {
	e := NewEvaluator(validSpec())
	// Healthy windows: burn 0.5, below the rule's 2.
	for i := int64(0); i < 3; i++ {
		if r := e.Observe(window(i, 95, 5, 100, 0)); r.Alerts[0].Firing {
			t.Fatalf("alert firing on healthy window %d", i)
		}
	}
	// Degraded: 50% bad → burn 5 ≥ 2 in both short (1) and long (3,
	// event-weighted) ranges once enough bad traffic accumulates.
	fired := false
	for i := int64(3); i < 6; i++ {
		if e.Observe(window(i, 50, 50, 100, 0)).Alerts[0].Firing {
			fired = true
		}
	}
	if !fired {
		t.Fatal("alert never fired through sustained 50% badness")
	}
	// Recovery: short window drops below the factor quickly.
	resolved := false
	for i := int64(6); i < 12; i++ {
		if !e.Observe(window(i, 100, 0, 100, 0)).Alerts[0].Firing {
			resolved = true
		}
	}
	if !resolved {
		t.Fatal("alert never resolved after recovery")
	}
}

func TestInstrumentEmitsTransitions(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	e := NewEvaluator(validSpec())
	e.Instrument(reg, tr)

	e.Observe(window(0, 0, 100, 100, 0)) // all bad: burn 10 → fire
	e.Observe(window(1, 100, 0, 100, 0)) // recover → resolve (short=1)

	snap := reg.Snapshot()
	var b strings.Builder
	if err := obs.WriteProm(&b, snap); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `slo_alert_transitions_total{alert="lat-burn"} 2`) {
		t.Fatalf("transition counter missing fire+resolve:\n%s", out)
	}
	if !strings.Contains(out, `slo_alert_firing{alert="lat-burn"} 0`) {
		t.Fatalf("firing gauge not reset:\n%s", out)
	}
	if tr.Len() != 2 {
		t.Fatalf("tracer recorded %d instants, want 2 (fire, resolve)", tr.Len())
	}
}

func TestEvaluationAccumulates(t *testing.T) {
	e := NewEvaluator(validSpec())
	e.Observe(window(0, 100, 0, 100, 0))
	e.Observe(window(1, 100, 0, 100, 0))
	ev := e.Evaluation()
	if len(ev.Windows) != 2 || ev.Spec.Name != "test" {
		t.Fatalf("evaluation = %d windows, spec %q", len(ev.Windows), ev.Spec.Name)
	}
	if ev.Windows[0].Index != 0 || ev.Windows[1].Index != 1 {
		t.Fatalf("window order wrong: %+v", ev.Windows)
	}
}
