package slo

import (
	"sync"

	"cxlsim/internal/obs"
	"cxlsim/internal/sim"
)

// goodTotal is one window's (good, total) contribution to an objective,
// kept for trailing burn-rate windows.
type goodTotal struct{ good, total float64 }

// Evaluator consumes sealed windows for one Spec and accumulates
// per-window objective standings and alert states. Bind it to an
// obs.Windows (or feed Observe directly) and read Evaluation at the
// end. Safe for concurrent use; windows must arrive in order, which
// obs.Windows guarantees.
type Evaluator struct {
	spec Spec

	mu      sync.Mutex
	history map[string][]goodTotal // objective → per-window good/total
	firing  map[string]bool        // alert → current state
	results []WindowResult

	// Optional instrumentation: firings as counters/gauges/instants.
	tracer  *obs.Tracer
	alertsC *obs.CounterVec
	firingG *obs.GaugeVec
	healthG *obs.GaugeVec
}

// NewEvaluator builds an evaluator for a validated spec.
func NewEvaluator(spec Spec) *Evaluator {
	return &Evaluator{
		spec:    spec,
		history: map[string][]goodTotal{},
		firing:  map[string]bool{},
	}
}

// Instrument emits alert activity into reg and tr (either may be nil):
// slo_alert_transitions_total{alert} counts fire/resolve edges,
// slo_alert_firing{alert} holds the current state,
// slo_objective_good_fraction{objective} tracks each objective per
// window, and every transition becomes an instant on the "slo" trace
// track at the window's end time.
func (e *Evaluator) Instrument(reg *obs.Registry, tr *obs.Tracer) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tracer = tr
	if reg != nil {
		e.alertsC = reg.CounterVec("slo_alert_transitions_total",
			"burn-rate alert state transitions (fire and resolve edges)", "alert")
		e.firingG = reg.GaugeVec("slo_alert_firing",
			"1 while the burn-rate alert is firing", "alert")
		e.healthG = reg.GaugeVec("slo_objective_good_fraction",
			"good fraction of the objective in the last evaluated window", "objective")
	}
}

// Bind subscribes the evaluator to w's sealed windows.
func (e *Evaluator) Bind(w *obs.Windows) { w.OnSeal(func(ws obs.WindowSnapshot) { e.Observe(ws) }) }

// Observe evaluates one sealed window and records the result.
func (e *Evaluator) Observe(ws obs.WindowSnapshot) WindowResult {
	e.mu.Lock()
	defer e.mu.Unlock()

	res := WindowResult{Index: ws.Index, StartNs: ws.StartNs, EndNs: ws.EndNs}
	for _, o := range e.spec.Objectives {
		gt := measure(o, ws)
		e.history[o.Name] = append(e.history[o.Name], gt)
		or := ObjectiveResult{Name: o.Name, Good: gt.good, Total: gt.total, GoodFraction: 1, Met: true}
		if gt.total > 0 {
			or.GoodFraction = gt.good / gt.total
			or.BurnRate = (1 - or.GoodFraction) / (1 - o.Target)
			or.Met = or.GoodFraction >= o.Target
		}
		if e.healthG != nil {
			e.healthG.With(o.Name).Set(or.GoodFraction)
		}
		res.Objectives = append(res.Objectives, or)
	}
	for _, a := range e.spec.Alerts {
		target := e.objective(a.Objective).Target
		ar := AlertResult{
			Name:      a.Name,
			LongBurn:  e.trailingBurn(a.Objective, a.LongWindows, target),
			ShortBurn: e.trailingBurn(a.Objective, a.ShortWindows, target),
		}
		ar.Firing = ar.LongBurn >= a.BurnRate && ar.ShortBurn >= a.BurnRate
		if ar.Firing != e.firing[a.Name] {
			e.firing[a.Name] = ar.Firing
			state := "resolved"
			if ar.Firing {
				state = "firing"
			}
			if e.alertsC != nil {
				e.alertsC.With(a.Name).Inc()
			}
			if e.firingG != nil {
				v := 0.0
				if ar.Firing {
					v = 1
				}
				e.firingG.With(a.Name).Set(v)
			}
			e.tracer.Instant("slo", a.Name+" "+state, sim.Time(ws.EndNs), map[string]any{
				"long_burn":  ar.LongBurn,
				"short_burn": ar.ShortBurn,
				"burn_rate":  a.BurnRate,
			})
		}
		res.Alerts = append(res.Alerts, ar)
	}
	e.results = append(e.results, res)
	return res
}

// objective finds a spec objective by name; Validate guarantees alert
// references resolve.
func (e *Evaluator) objective(name string) Objective {
	for _, o := range e.spec.Objectives {
		if o.Name == name {
			return o
		}
	}
	return Objective{Target: 0.999}
}

// trailingBurn is the event-weighted burn rate over the last n windows
// of an objective's history: the bad fraction of all traffic in the
// range, divided by the objective's error budget. No traffic burns
// nothing.
func (e *Evaluator) trailingBurn(objective string, n int, target float64) float64 {
	h := e.history[objective]
	if n > len(h) {
		n = len(h)
	}
	var good, total float64
	for _, gt := range h[len(h)-n:] {
		good += gt.good
		total += gt.total
	}
	if total == 0 {
		return 0
	}
	return ((total - good) / total) / (1 - target)
}

// measure extracts an objective's (good, total) from one window.
func measure(o Objective, ws obs.WindowSnapshot) goodTotal {
	var gt goodTotal
	switch o.Kind {
	case KindLatency:
		for _, h := range ws.Histograms {
			if h.Name != o.Metric {
				continue
			}
			// Underflow sits below every bucket — and the histogram base is
			// far below any sane latency threshold — so it counts good.
			gt.good += float64(h.Underflow)
			gt.total += float64(h.Count + h.Underflow)
			for _, b := range h.Buckets {
				if b.UpperBound <= o.ThresholdNs {
					gt.good += float64(b.Count)
				}
			}
		}
	case KindAvailability:
		for _, c := range ws.Counters {
			switch c.Name {
			case o.Metric:
				gt.good += c.Delta
				gt.total += c.Delta
			case o.BadMetric:
				gt.total += c.Delta
			}
		}
	}
	return gt
}

// Evaluation returns the spec plus every window evaluated so far.
func (e *Evaluator) Evaluation() *Evaluation {
	e.mu.Lock()
	defer e.mu.Unlock()
	return &Evaluation{
		Spec:    e.spec,
		Windows: append([]WindowResult(nil), e.results...),
	}
}
