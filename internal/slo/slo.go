// Package slo evaluates declarative service-level objectives against
// the windowed metric view in internal/obs, entirely in virtual time.
//
// A Spec names objectives — latency-percentile targets over a window
// histogram, or availability over good/bad counters — plus multi-window
// burn-rate alert rules in the SRE style: an alert fires when both a
// long and a short trailing window burn error budget faster than the
// rule's factor, so sustained degradation trips quickly while the short
// window makes the alert reset promptly once the incident clears.
//
// Everything is deterministic: evaluation consumes sealed
// obs.WindowSnapshot values in order, alert transitions are emitted as
// tracer instants at window-end virtual times and as obs counters, and
// the resulting Evaluation serializes to stable JSON for cxlreport.
package slo

import (
	"encoding/json"
	"fmt"
	"os"
)

// Objective kinds.
const (
	KindLatency      = "latency"      // fraction of observations at or under ThresholdNs
	KindAvailability = "availability" // good counter vs bad counter
)

// Objective is one service-level objective evaluated per window.
type Objective struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // KindLatency or KindAvailability

	// Metric names the good signal: for latency, the histogram family
	// whose windowed buckets are classified against ThresholdNs; for
	// availability, the counter family of successful events. Children of
	// a labeled family are summed.
	Metric string `json:"metric"`

	// ThresholdNs classifies a latency observation as good when its
	// bucket upper bound is at or under it. Latency objectives only.
	ThresholdNs float64 `json:"threshold_ns,omitempty"`

	// BadMetric is the counter family of failed events. Availability
	// objectives only.
	BadMetric string `json:"bad_metric,omitempty"`

	// Target is the objective's good fraction in (0,1), e.g. 0.999.
	Target float64 `json:"target"`
}

// AlertRule is a multi-window burn-rate alert over one objective. The
// rule fires for a window when the error-budget burn rate over both the
// trailing LongWindows and the trailing ShortWindows is at least
// BurnRate. Windows are event-weighted (total burn over total traffic),
// and trailing ranges shorter than requested — at the start of a run —
// use what exists.
type AlertRule struct {
	Name         string  `json:"name"`
	Objective    string  `json:"objective"`
	LongWindows  int     `json:"long_windows"`
	ShortWindows int     `json:"short_windows"`
	BurnRate     float64 `json:"burn_rate"`
}

// Spec is a full SLO declaration, loadable from examples/slo/*.json.
type Spec struct {
	Name string `json:"name"`

	// WindowMs is the evaluation window length in virtual milliseconds,
	// used by commands to size obs.Windows when no -windows flag is
	// given. Optional.
	WindowMs float64 `json:"window_ms,omitempty"`

	Objectives []Objective `json:"objectives"`
	Alerts     []AlertRule `json:"alerts,omitempty"`
}

// Validate checks the spec's internal consistency.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("slo: spec has no name")
	}
	if s.WindowMs < 0 {
		return fmt.Errorf("slo: spec %s: negative window_ms", s.Name)
	}
	if len(s.Objectives) == 0 {
		return fmt.Errorf("slo: spec %s has no objectives", s.Name)
	}
	names := map[string]bool{}
	for i, o := range s.Objectives {
		if o.Name == "" {
			return fmt.Errorf("slo: spec %s: objective %d has no name", s.Name, i)
		}
		if names[o.Name] {
			return fmt.Errorf("slo: spec %s: duplicate objective %q", s.Name, o.Name)
		}
		names[o.Name] = true
		if o.Target <= 0 || o.Target >= 1 {
			return fmt.Errorf("slo: objective %s: target %v outside (0,1)", o.Name, o.Target)
		}
		if o.Metric == "" {
			return fmt.Errorf("slo: objective %s: no metric", o.Name)
		}
		switch o.Kind {
		case KindLatency:
			if o.ThresholdNs <= 0 {
				return fmt.Errorf("slo: latency objective %s: threshold_ns must be positive", o.Name)
			}
		case KindAvailability:
			if o.BadMetric == "" {
				return fmt.Errorf("slo: availability objective %s: no bad_metric", o.Name)
			}
		default:
			return fmt.Errorf("slo: objective %s: unknown kind %q", o.Name, o.Kind)
		}
	}
	alerts := map[string]bool{}
	for i, a := range s.Alerts {
		if a.Name == "" {
			return fmt.Errorf("slo: spec %s: alert %d has no name", s.Name, i)
		}
		if alerts[a.Name] {
			return fmt.Errorf("slo: spec %s: duplicate alert %q", s.Name, a.Name)
		}
		alerts[a.Name] = true
		if !names[a.Objective] {
			return fmt.Errorf("slo: alert %s references unknown objective %q", a.Name, a.Objective)
		}
		if a.ShortWindows < 1 || a.LongWindows < 1 {
			return fmt.Errorf("slo: alert %s: window counts must be at least 1", a.Name)
		}
		if a.ShortWindows > a.LongWindows {
			return fmt.Errorf("slo: alert %s: short_windows exceeds long_windows", a.Name)
		}
		if a.BurnRate <= 0 {
			return fmt.Errorf("slo: alert %s: burn_rate must be positive", a.Name)
		}
	}
	return nil
}

// Load reads and validates a spec from a JSON file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("slo: parsing %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return &s, nil
}

// ObjectiveResult is one objective's standing in one window.
type ObjectiveResult struct {
	Name         string  `json:"name"`
	Good         float64 `json:"good"`
	Total        float64 `json:"total"`
	GoodFraction float64 `json:"good_fraction"`
	BurnRate     float64 `json:"burn_rate"` // budget burn this window; 1.0 = exactly on target
	Met          bool    `json:"met"`
}

// AlertResult is one alert rule's standing in one window.
type AlertResult struct {
	Name      string  `json:"name"`
	Firing    bool    `json:"firing"`
	LongBurn  float64 `json:"long_burn"`
	ShortBurn float64 `json:"short_burn"`
}

// WindowResult is a full evaluation of one sealed window.
type WindowResult struct {
	Index      int64             `json:"index"`
	StartNs    float64           `json:"start_ns"`
	EndNs      float64           `json:"end_ns"`
	Objectives []ObjectiveResult `json:"objectives"`
	Alerts     []AlertResult     `json:"alerts,omitempty"`
}

// Evaluation is a spec plus every window result, the unit cxlreport
// consumes.
type Evaluation struct {
	Spec    Spec           `json:"spec"`
	Windows []WindowResult `json:"windows"`
}
