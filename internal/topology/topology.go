// Package topology assembles memsim resources into machines shaped like
// the paper's testbed (§2.4): dual-socket Sapphire Rapids servers with
// four SNC domains per socket, two AsteraLabs A1000 CXL expanders on
// socket 0, and a baseline server without CXL cards.
//
// A Machine hands out memsim.Paths from a CPU location (socket) to a
// memory node; paths to the same node share the underlying resources, so
// contention composes across applications and policies automatically.
package topology

import (
	"fmt"

	"cxlsim/internal/memsim"
)

// FabricHopNs is the one-way latency between two servers on the testbed
// fabric (§4.1.1 measures a 10 µs client↔server round trip on the
// 100 Gbps network; one hop is half of that). It is also the minimum
// cross-node latency, which makes it the conservative lookahead bound
// for sharded multi-node simulation: no node can affect another sooner
// than one hop.
const FabricHopNs = 5_000.0

// NodeKind distinguishes memory technologies behind a NUMA node.
type NodeKind int

// Node kinds.
const (
	DRAM NodeKind = iota
	CXL
)

// String names the kind.
func (k NodeKind) String() string {
	if k == CXL {
		return "cxl"
	}
	return "dram"
}

// Node is one memory node: a pool of capacity behind one device resource.
// With SNC enabled a socket exposes four DRAM nodes (one per sub-NUMA
// domain); with SNC disabled it exposes one. Each CXL expander is its own
// CPU-less node, as Linux presents CXL 1.1 Type-3 memory.
type Node struct {
	ID       int
	Name     string
	Kind     NodeKind
	Socket   int
	Capacity uint64 // bytes

	res *memsim.Resource
}

// Resource exposes the backing device (for PCM counters and ablations).
func (n *Node) Resource() *memsim.Resource { return n.res }

// Config describes a machine to build.
type Config struct {
	Name       string
	Sockets    int
	SNC        bool // SNC-4 on each socket when true
	CXLSocket0 int  // number of A1000 devices attached to socket 0
}

// Machine is a built server.
type Machine struct {
	Config Config
	Nodes  []*Node

	upi   *memsim.Resource         // cross-socket interconnect (shared)
	rsf   map[int]*memsim.Resource // per-CXL-node remote snoop filter stage
	paths map[[2]int]*memsim.Path  // (socket, nodeID) → path cache
	ssd   *memsim.Resource         // local NVMe for spill paths
}

// New builds a machine from a config.
func New(cfg Config) *Machine {
	if cfg.Sockets < 1 {
		panic("topology: machine needs at least one socket")
	}
	if cfg.CXLSocket0 < 0 {
		panic("topology: negative CXL device count")
	}
	m := &Machine{
		Config: cfg,
		rsf:    map[int]*memsim.Resource{},
		paths:  map[[2]int]*memsim.Path{},
		ssd:    memsim.NewSSDStage(cfg.Name + "/ssd"),
	}
	if cfg.Sockets > 1 {
		m.upi = memsim.NewUPILink(cfg.Name + "/upi")
	}
	id := 0
	for s := 0; s < cfg.Sockets; s++ {
		if cfg.SNC {
			for d := 0; d < 4; d++ {
				name := fmt.Sprintf("%s/s%d/snc%d", cfg.Name, s, d)
				m.Nodes = append(m.Nodes, &Node{
					ID: id, Name: name, Kind: DRAM, Socket: s,
					Capacity: memsim.SNCDomainCapacityBytes,
					res:      memsim.NewDDRDomain(name),
				})
				id++
			}
		} else {
			name := fmt.Sprintf("%s/s%d/dram", cfg.Name, s)
			m.Nodes = append(m.Nodes, &Node{
				ID: id, Name: name, Kind: DRAM, Socket: s,
				Capacity: memsim.SocketDDRCapacityBytes,
				res:      memsim.NewSocketDDR(name),
			})
			id++
		}
	}
	for c := 0; c < cfg.CXLSocket0; c++ {
		name := fmt.Sprintf("%s/s0/cxl%d", cfg.Name, c)
		n := &Node{
			ID: id, Name: name, Kind: CXL, Socket: 0,
			Capacity: memsim.CXLDeviceCapacityBytes,
			res:      memsim.NewCXLDevice(name),
		}
		m.Nodes = append(m.Nodes, n)
		m.rsf[n.ID] = memsim.NewRSFStage(name + "/rsf")
		id++
	}
	return m
}

// Testbed builds one of the paper's CXL experiment servers with SNC
// disabled (the configuration for the capacity-bound experiments, §4).
func Testbed() *Machine {
	return New(Config{Name: "cxlsrv", Sockets: 2, SNC: false, CXLSocket0: 2})
}

// TestbedSNC builds a CXL server with SNC-4 enabled (the configuration
// for the raw-performance §3 and bandwidth-bound §5 experiments).
func TestbedSNC() *Machine {
	return New(Config{Name: "cxlsrv", Sockets: 2, SNC: true, CXLSocket0: 2})
}

// Baseline builds the third server: identical but without CXL cards.
func Baseline() *Machine {
	return New(Config{Name: "basesrv", Sockets: 2, SNC: false, CXLSocket0: 0})
}

// Node returns the node with the given ID.
func (m *Machine) Node(id int) *Node {
	if id < 0 || id >= len(m.Nodes) {
		panic(fmt.Sprintf("topology: no node %d", id))
	}
	return m.Nodes[id]
}

// DRAMNodes returns the DRAM nodes on one socket.
func (m *Machine) DRAMNodes(socket int) []*Node {
	var out []*Node
	for _, n := range m.Nodes {
		if n.Kind == DRAM && n.Socket == socket {
			out = append(out, n)
		}
	}
	return out
}

// CXLNodes returns all CXL nodes.
func (m *Machine) CXLNodes() []*Node {
	var out []*Node
	for _, n := range m.Nodes {
		if n.Kind == CXL {
			out = append(out, n)
		}
	}
	return out
}

// PathFrom returns the memory path from a CPU on the given socket to the
// node. Paths are cached; repeated calls return the same *Path so flow
// contention composes.
func (m *Machine) PathFrom(socket int, n *Node) *memsim.Path {
	if socket < 0 || socket >= m.Config.Sockets {
		panic(fmt.Sprintf("topology: no socket %d", socket))
	}
	key := [2]int{socket, n.ID}
	if p, ok := m.paths[key]; ok {
		return p
	}
	var p *memsim.Path
	local := socket == n.Socket
	switch {
	case local:
		p = memsim.NewPath(fmt.Sprintf("s%d→%s", socket, n.Name), n.res)
	case n.Kind == DRAM:
		p = memsim.NewPath(fmt.Sprintf("s%d→%s", socket, n.Name), m.upi, n.res)
	default: // remote CXL: UPI + remote snoop filter clamp + device
		p = memsim.NewPath(fmt.Sprintf("s%d→%s", socket, n.Name), m.upi, m.rsf[n.ID], n.res)
	}
	m.paths[key] = p
	return p
}

// SSDPath returns the path to the machine's local NVMe SSD (spill
// traffic). The CPU socket does not materially change SSD latency.
func (m *Machine) SSDPath() *memsim.Path {
	key := [2]int{-1, -1}
	if p, ok := m.paths[key]; ok {
		return p
	}
	p := memsim.NewPath(m.Config.Name+"/ssdpath", m.ssd)
	m.paths[key] = p
	return p
}

// TotalDRAM reports the machine's DRAM capacity in bytes.
func (m *Machine) TotalDRAM() uint64 {
	var sum uint64
	for _, n := range m.Nodes {
		if n.Kind == DRAM {
			sum += n.Capacity
		}
	}
	return sum
}

// TotalCXL reports the machine's CXL capacity in bytes.
func (m *Machine) TotalCXL() uint64 {
	var sum uint64
	for _, n := range m.Nodes {
		if n.Kind == CXL {
			sum += n.Capacity
		}
	}
	return sum
}

// Resources lists every device/link resource in the machine, for counter
// collection.
func (m *Machine) Resources() []*memsim.Resource {
	var out []*memsim.Resource
	for _, n := range m.Nodes {
		out = append(out, n.res)
	}
	if m.upi != nil {
		out = append(out, m.upi)
	}
	for _, r := range m.rsf {
		out = append(out, r)
	}
	out = append(out, m.ssd)
	return out
}

// UPI exposes the cross-socket link (nil on single-socket machines).
func (m *Machine) UPI() *memsim.Resource { return m.upi }
