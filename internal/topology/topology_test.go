package topology

import (
	"math"
	"testing"

	"cxlsim/internal/memsim"
)

func TestTestbedShape(t *testing.T) {
	m := Testbed()
	if got := len(m.DRAMNodes(0)); got != 1 {
		t.Fatalf("socket 0 DRAM nodes = %d, want 1 (SNC off)", got)
	}
	if got := len(m.CXLNodes()); got != 2 {
		t.Fatalf("CXL nodes = %d, want 2 (two A1000 cards)", got)
	}
	if m.TotalDRAM() != 1024<<30 {
		t.Fatalf("DRAM capacity = %d, want 1 TB", m.TotalDRAM())
	}
	if m.TotalCXL() != 512<<30 {
		t.Fatalf("CXL capacity = %d, want 512 GB", m.TotalCXL())
	}
	for _, n := range m.CXLNodes() {
		if n.Socket != 0 {
			t.Fatal("CXL cards must be on socket 0 (§2.4)")
		}
	}
}

func TestTestbedSNCShape(t *testing.T) {
	m := TestbedSNC()
	if got := len(m.DRAMNodes(0)); got != 4 {
		t.Fatalf("socket 0 DRAM nodes = %d, want 4 (SNC-4)", got)
	}
	if got := len(m.DRAMNodes(1)); got != 4 {
		t.Fatalf("socket 1 DRAM nodes = %d, want 4", got)
	}
	n := m.DRAMNodes(0)[0]
	if n.Capacity != 128<<30 {
		t.Fatalf("SNC domain capacity = %d, want 128 GB", n.Capacity)
	}
	if m.TotalDRAM() != 1024<<30 {
		t.Fatalf("total DRAM = %d, want 1 TB regardless of SNC", m.TotalDRAM())
	}
}

func TestBaselineHasNoCXL(t *testing.T) {
	m := Baseline()
	if len(m.CXLNodes()) != 0 {
		t.Fatal("baseline server must have no CXL nodes")
	}
}

func TestPathLatenciesMatchPaper(t *testing.T) {
	m := TestbedSNC()
	localDDR := m.PathFrom(0, m.DRAMNodes(0)[0])
	remoteDDR := m.PathFrom(1, m.DRAMNodes(0)[0])
	localCXL := m.PathFrom(0, m.CXLNodes()[0])
	remoteCXL := m.PathFrom(1, m.CXLNodes()[0])

	cases := []struct {
		name string
		path *memsim.Path
		want float64
	}{
		{"local DDR", localDDR, 97},
		{"remote DDR", remoteDDR, 130},
		{"local CXL", localCXL, 250.42},
		{"remote CXL", remoteCXL, 485},
	}
	for _, c := range cases {
		got := c.path.IdleLatency(memsim.ReadOnly)
		if math.Abs(got-c.want)/c.want > 0.01 {
			t.Errorf("%s idle read latency = %.2f, want %.2f", c.name, got, c.want)
		}
	}
}

func TestRemoteCXLBandwidthClamp(t *testing.T) {
	m := TestbedSNC()
	remoteCXL := m.PathFrom(1, m.CXLNodes()[0])
	if bw := remoteCXL.PeakBandwidth(memsim.Mix2to1); math.Abs(bw-20.4) > 0.5 {
		t.Fatalf("remote CXL 2:1 peak = %.1f, want ≈20.4 (RSF clamp)", bw)
	}
	localCXL := m.PathFrom(0, m.CXLNodes()[0])
	if localCXL.PeakBandwidth(memsim.Mix2to1) < 2*remoteCXL.PeakBandwidth(memsim.Mix2to1) {
		t.Fatal("remote CXL bandwidth should be less than half of local (§3.2: 'unexpectedly halved')")
	}
}

func TestPathCaching(t *testing.T) {
	m := Testbed()
	n := m.DRAMNodes(0)[0]
	if m.PathFrom(0, n) != m.PathFrom(0, n) {
		t.Fatal("paths to the same node must be cached/shared")
	}
	if m.SSDPath() != m.SSDPath() {
		t.Fatal("SSD path must be cached")
	}
}

func TestSharedContentionAcrossSockets(t *testing.T) {
	// Both sockets hammering the same DRAM node share its device.
	m := Testbed()
	n := m.DRAMNodes(0)[0]
	p0 := m.PathFrom(0, n)
	p1 := m.PathFrom(1, n)
	res, _ := memsim.SolveOpen([]memsim.OpenFlow{
		{Placement: memsim.SinglePath(p0), Mix: memsim.ReadOnly, Offered: 150},
		{Placement: memsim.SinglePath(p1), Mix: memsim.ReadOnly, Offered: 150},
	})
	total := res[0].Achieved + res[1].Achieved
	if total > n.Resource().Peak.At(1)+1 {
		t.Fatalf("combined achieved %.1f exceeds device peak", total)
	}
}

func TestNodeLookupAndBounds(t *testing.T) {
	m := Testbed()
	if m.Node(0).ID != 0 {
		t.Fatal("Node(0) wrong")
	}
	for name, f := range map[string]func(){
		"bad node":   func() { m.Node(99) },
		"bad socket": func() { m.PathFrom(5, m.Nodes[0]) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestConfigValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"no sockets":   {Sockets: 0},
		"negative cxl": {Sockets: 1, CXLSocket0: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			New(cfg)
		}()
	}
}

func TestResourcesEnumeration(t *testing.T) {
	m := Testbed()
	rs := m.Resources()
	// 2 DRAM + 2 CXL + UPI + 2 RSF + SSD = 8.
	if len(rs) != 8 {
		t.Fatalf("resources = %d, want 8", len(rs))
	}
	single := New(Config{Name: "one", Sockets: 1})
	if single.UPI() != nil {
		t.Fatal("single-socket machine should have no UPI")
	}
}

func TestNodeKindString(t *testing.T) {
	if DRAM.String() != "dram" || CXL.String() != "cxl" {
		t.Fatal("kind strings wrong")
	}
}

func TestSSDPathIsSlow(t *testing.T) {
	m := Testbed()
	ssd := m.SSDPath()
	if ssd.IdleLatency(memsim.ReadOnly) < 10_000 {
		t.Fatal("SSD read latency should be tens of microseconds")
	}
}
