// Package vmm is cxlsim's virtual memory manager: page-granularity
// placement of application address spaces across the machine's NUMA/CXL
// nodes, with capacity accounting, access-heat tracking, and page
// migration — the substrate under the kernel tiering policies of §2.3.
//
// Pages are simulated at 2 MiB granularity by default (the kernel's THP /
// hot-page-selection granularity class); at 4 KiB a 512 GB working set
// would need 134M page records for no additional modeling fidelity.
package vmm

import (
	"errors"
	"fmt"

	"cxlsim/internal/sim"
	"cxlsim/internal/topology"
)

// DefaultPageSize is the simulation page granularity.
const DefaultPageSize = 2 << 20

// ErrNoCapacity is returned when an allocation cannot be satisfied by the
// policy's target nodes.
var ErrNoCapacity = errors.New("vmm: no capacity on target nodes")

// Page is one simulated page. Heat is tracked lazily: the raw counter
// (heat) is valid as of the decay epoch stamped in decayedAt, and reads
// through Space.Heat/Touch apply any decay epochs the page has missed.
// That makes Space.DecayHeat O(1) instead of O(pages) — the per-epoch
// full-array sweep was the dominant tiering-epoch cost at production
// working-set sizes.
type Page struct {
	Node       *topology.Node
	LastAccess sim.Time // time of most recent touch

	heat      float64 // decayed access counter, valid as of decayedAt
	decayedAt uint64  // decay epochs applied to heat so far
}

// Space is one application address space: a flat array of pages.
type Space struct {
	PageSize uint64
	Pages    []Page

	// heatEpoch counts DecayHeat calls; decayFactor is the factor shared
	// by all epochs a page may still have pending (DecayHeat materializes
	// outstanding decay eagerly on the rare occasion the factor changes,
	// so a single factor always suffices).
	heatEpoch   uint64
	decayFactor float64

	// shareScratch/shareSeen accumulate per-node mass (indexed by node
	// ID) inside NodeShare/HeatShare, replacing a map operation per page
	// with a slice index. Reused across calls; epoch loops call these
	// every tick, so the scratch removes their dominant allocation
	// churn. Not safe for concurrent calls on the same Space (a Space is
	// owned by one simulated application).
	shareScratch []float64
	shareSeen    []bool
}

// NewSpace returns an empty space with the given page size (0 ⇒ default).
func NewSpace(pageSize uint64) *Space {
	if pageSize == 0 {
		pageSize = DefaultPageSize
	}
	return &Space{PageSize: pageSize}
}

// Bytes reports the space's total size.
func (s *Space) Bytes() uint64 { return uint64(len(s.Pages)) * s.PageSize }

// PageFor maps a byte offset to a page index.
func (s *Space) PageFor(offset uint64) int {
	idx := int(offset / s.PageSize)
	if idx < 0 || idx >= len(s.Pages) {
		panic(fmt.Sprintf("vmm: offset %d outside space of %d pages", offset, len(s.Pages)))
	}
	return idx
}

// Touch records accesses to a page: weight is the number of accesses
// (reads+writes) attributed, now stamps recency. Pending lazy decay is
// applied before the weight lands, so interleaved Touch/DecayHeat
// sequences produce bit-identical heat to an eager per-epoch sweep.
func (s *Space) Touch(page int, weight float64, now sim.Time) {
	p := &s.Pages[page]
	s.syncHeat(p)
	p.heat += weight
	p.LastAccess = now
}

// Heat reports a page's decayed access counter (accesses/epoch scale),
// applying any decay epochs the page has missed. Like Touch, it is a
// mutating read (it advances the page's decay stamp) and is not safe for
// concurrent calls on the same Space.
func (s *Space) Heat(page int) float64 {
	p := &s.Pages[page]
	s.syncHeat(p)
	return p.heat
}

// syncHeat applies the decay epochs p has missed. The factor is applied
// by repeated multiplication — not math.Pow — so the result is
// bit-identical to the eager per-epoch sweep it replaces.
func (s *Space) syncHeat(p *Page) {
	d := s.heatEpoch - p.decayedAt
	if d == 0 {
		return
	}
	p.decayedAt = s.heatEpoch
	if p.heat == 0 {
		return // 0 × factor is 0 for any epoch count
	}
	f := s.decayFactor
	for ; d > 0; d-- {
		p.heat *= f
		if p.heat == 0 {
			break // underflowed (or factor 0): stays exactly zero
		}
	}
}

// DecayHeat ages all heat counters by factor (0..1) — called once per
// epoch so heat approximates an exponentially-weighted access rate.
// Decay is lazy: this bumps a per-space epoch counter in O(1), and pages
// apply factor^Δepochs when next read through Touch/Heat. Calling with a
// different factor than the previous epoch first materializes all
// outstanding decay (an O(pages) sweep), so mixed-factor schedules stay
// exact; steady epoch loops use one factor and never sweep.
func (s *Space) DecayHeat(factor float64) {
	if factor < 0 || factor > 1 {
		panic("vmm: decay factor outside [0,1]")
	}
	if factor != s.decayFactor && s.heatEpoch > 0 {
		s.FlushHeat()
	}
	s.decayFactor = factor
	s.heatEpoch++
}

// FlushHeat materializes all pending lazy decay so every page's raw
// counter is current. Epoch loops never need this; it exists for factor
// changes and for tests that compare against an eager sweep.
func (s *Space) FlushHeat() {
	for i := range s.Pages {
		s.syncHeat(&s.Pages[i])
	}
}

// accumulateShares sums mass per node over the reused scratch slices and
// returns the distinct nodes in first-encountered page order. Callers
// read s.shareScratch[n.ID] for each returned node and must finish with
// resetShares(nodes) so the scratch is clean for the next call.
func (s *Space) accumulateShares(mass func(p *Page) float64) (nodes []*topology.Node) {
	for i := range s.Pages {
		n := s.Pages[i].Node
		for n.ID >= len(s.shareScratch) {
			s.shareScratch = append(s.shareScratch, 0)
			s.shareSeen = append(s.shareSeen, false)
		}
		if !s.shareSeen[n.ID] {
			s.shareSeen[n.ID] = true
			nodes = append(nodes, n)
		}
		s.shareScratch[n.ID] += mass(&s.Pages[i])
	}
	return nodes
}

func (s *Space) resetShares(nodes []*topology.Node) {
	for _, n := range nodes {
		s.shareScratch[n.ID] = 0
		s.shareSeen[n.ID] = false
	}
}

// NodeShare reports the fraction of pages on each node (capacity split).
// The returned map is freshly allocated (callers may hold it across
// epochs); the per-page accumulation runs over a reused scratch slice.
func (s *Space) NodeShare() map[*topology.Node]float64 {
	out := map[*topology.Node]float64{}
	if len(s.Pages) == 0 {
		return out
	}
	nodes := s.accumulateShares(func(*Page) float64 { return 1 })
	inv := 1 / float64(len(s.Pages))
	for _, n := range nodes {
		out[n] = s.shareScratch[n.ID] * inv
	}
	s.resetShares(nodes)
	return out
}

// HeatShare reports the fraction of recent accesses (by heat mass)
// served from each node — the access split that determines the app's
// effective memory placement. Like NodeShare, the returned map is fresh
// but the accumulation reuses the space's scratch.
func (s *Space) HeatShare() map[*topology.Node]float64 {
	nodes := s.accumulateShares(func(p *Page) float64 {
		s.syncHeat(p)
		return p.heat
	})
	total := 0.0
	for _, n := range nodes {
		total += s.shareScratch[n.ID]
	}
	if total == 0 {
		s.resetShares(nodes)
		return s.NodeShare()
	}
	out := make(map[*topology.Node]float64, len(nodes))
	for _, n := range nodes {
		out[n] = s.shareScratch[n.ID] / total
	}
	s.resetShares(nodes)
	return out
}

// Allocator tracks node capacity and performs allocation and migration.
type Allocator struct {
	machine *topology.Machine
	used    map[int]uint64 // nodeID → bytes
}

// NewAllocator returns an allocator over the machine's nodes.
func NewAllocator(m *topology.Machine) *Allocator {
	return &Allocator{machine: m, used: map[int]uint64{}}
}

// Used reports bytes allocated on a node.
func (a *Allocator) Used(n *topology.Node) uint64 { return a.used[n.ID] }

// Free reports remaining bytes on a node.
func (a *Allocator) Free(n *topology.Node) uint64 {
	u := a.used[n.ID]
	if u >= n.Capacity {
		return 0
	}
	return n.Capacity - u
}

// Alloc grows the space by size bytes placed according to the policy.
// On ErrNoCapacity the space is left unchanged.
func (a *Allocator) Alloc(s *Space, size uint64, pol Policy) error {
	pages := int((size + s.PageSize - 1) / s.PageSize)
	placed, err := pol.place(a, s.PageSize, pages)
	if err != nil {
		return err
	}
	for _, n := range placed {
		a.used[n.ID] += s.PageSize
		// New pages are born current: decay epochs before allocation do
		// not apply to them.
		s.Pages = append(s.Pages, Page{Node: n, decayedAt: s.heatEpoch})
	}
	return nil
}

// FreeSpace releases every page of the space back to its nodes and
// truncates the space.
func (a *Allocator) FreeSpace(s *Space) {
	for i := range s.Pages {
		a.release(s.Pages[i].Node, s.PageSize)
	}
	s.Pages = s.Pages[:0]
}

func (a *Allocator) release(n *topology.Node, bytes uint64) {
	if a.used[n.ID] < bytes {
		panic("vmm: releasing more than allocated")
	}
	a.used[n.ID] -= bytes
}

// Migrate moves one page of the space to the destination node, updating
// capacity accounting. Returns ErrNoCapacity when dst is full.
func (a *Allocator) Migrate(s *Space, page int, dst *topology.Node) error {
	p := &s.Pages[page]
	if p.Node == dst {
		return nil
	}
	if a.Free(dst) < uint64(s.PageSize) {
		return ErrNoCapacity
	}
	a.release(p.Node, s.PageSize)
	a.used[dst.ID] += s.PageSize
	p.Node = dst
	return nil
}

// Policy decides where new pages land.
type Policy interface {
	place(a *Allocator, pageSize uint64, pages int) ([]*topology.Node, error)
}

// Bind places every page on the listed nodes, filling them in order —
// the numactl --membind analogue (§4.3 binds KeyDB wholly to MMEM or CXL).
type Bind struct {
	Nodes []*topology.Node
}

func (b Bind) place(a *Allocator, pageSize uint64, pages int) ([]*topology.Node, error) {
	return fillFirst(a, b.Nodes, pageSize, pages)
}

// Preferred fills Primary first, then overflows to Fallback nodes — the
// default kernel first-touch-with-fallback behaviour.
type Preferred struct {
	Primary  []*topology.Node
	Fallback []*topology.Node
}

func (p Preferred) place(a *Allocator, pageSize uint64, pages int) ([]*topology.Node, error) {
	return fillFirst(a, append(append([]*topology.Node{}, p.Primary...), p.Fallback...), pageSize, pages)
}

// InterleaveNM is the tiered-memory N:M interleave policy (§2.3): of
// every N+M pages, N go to the Top nodes (round-robin) and M to the Low
// nodes. A 4:1 ratio directs 80% of pages (and, for uniformly accessed
// data, 80% of traffic) to the top tier.
type InterleaveNM struct {
	Top, Low []*topology.Node
	N, M     int
}

func (il InterleaveNM) place(a *Allocator, pageSize uint64, pages int) ([]*topology.Node, error) {
	if il.N < 0 || il.M < 0 || il.N+il.M == 0 {
		return nil, fmt.Errorf("vmm: invalid interleave ratio %d:%d", il.N, il.M)
	}
	if len(il.Top) == 0 && il.N > 0 || len(il.Low) == 0 && il.M > 0 {
		return nil, errors.New("vmm: interleave tier with no nodes")
	}
	out := make([]*topology.Node, 0, pages)
	// Tentative placement must be atomic: track hypothetical usage.
	tentative := map[int]uint64{}
	free := func(n *topology.Node) uint64 {
		f := a.Free(n)
		t := tentative[n.ID]
		if t >= f {
			return 0
		}
		return f - t
	}
	pick := func(tier []*topology.Node, rr int) (*topology.Node, bool) {
		for k := 0; k < len(tier); k++ {
			n := tier[(rr+k)%len(tier)]
			if free(n) >= pageSize {
				return n, true
			}
		}
		return nil, false
	}
	topRR, lowRR := 0, 0
	cycle := il.N + il.M
	for i := 0; i < pages; i++ {
		var n *topology.Node
		var ok bool
		if i%cycle < il.N {
			n, ok = pick(il.Top, topRR)
			topRR++
		} else {
			n, ok = pick(il.Low, lowRR)
			lowRR++
		}
		if !ok {
			return nil, ErrNoCapacity
		}
		tentative[n.ID] += pageSize
		out = append(out, n)
	}
	return out, nil
}

// fillFirst places pages on nodes in order, moving on when each fills.
func fillFirst(a *Allocator, nodes []*topology.Node, pageSize uint64, pages int) ([]*topology.Node, error) {
	if len(nodes) == 0 {
		return nil, errors.New("vmm: policy with no nodes")
	}
	out := make([]*topology.Node, 0, pages)
	tentative := map[int]uint64{}
	ni := 0
	for i := 0; i < pages; i++ {
		for ni < len(nodes) {
			n := nodes[ni]
			if a.Free(n)-min64(tentative[n.ID], a.Free(n)) >= pageSize {
				tentative[n.ID] += pageSize
				out = append(out, n)
				break
			}
			ni++
		}
		if len(out) != i+1 {
			return nil, ErrNoCapacity
		}
	}
	return out, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
