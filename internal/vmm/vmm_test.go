package vmm

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"cxlsim/internal/topology"
)

func testMachine() *topology.Machine { return topology.Testbed() }

func TestAllocBindFillsInOrder(t *testing.T) {
	m := testMachine()
	a := NewAllocator(m)
	s := NewSpace(0)
	dram := m.DRAMNodes(0)[0]
	if err := a.Alloc(s, 10*DefaultPageSize, Bind{Nodes: []*topology.Node{dram}}); err != nil {
		t.Fatal(err)
	}
	if len(s.Pages) != 10 {
		t.Fatalf("pages = %d, want 10", len(s.Pages))
	}
	for i := range s.Pages {
		if s.Pages[i].Node != dram {
			t.Fatal("bind page landed off-node")
		}
	}
	if a.Used(dram) != 10*DefaultPageSize {
		t.Fatalf("used = %d", a.Used(dram))
	}
}

func TestAllocRoundsUpPartialPage(t *testing.T) {
	m := testMachine()
	a := NewAllocator(m)
	s := NewSpace(0)
	if err := a.Alloc(s, 1, Bind{Nodes: []*topology.Node{m.DRAMNodes(0)[0]}}); err != nil {
		t.Fatal(err)
	}
	if len(s.Pages) != 1 {
		t.Fatalf("pages = %d, want 1 (round up)", len(s.Pages))
	}
}

func TestAllocCapacityExhaustion(t *testing.T) {
	m := testMachine()
	a := NewAllocator(m)
	s := NewSpace(0)
	dram := m.DRAMNodes(0)[0]
	if err := a.Alloc(s, dram.Capacity, Bind{Nodes: []*topology.Node{dram}}); err != nil {
		t.Fatal(err)
	}
	before := len(s.Pages)
	err := a.Alloc(s, DefaultPageSize, Bind{Nodes: []*topology.Node{dram}})
	if !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v, want ErrNoCapacity", err)
	}
	if len(s.Pages) != before {
		t.Fatal("failed alloc must not grow the space")
	}
	if a.Free(dram) != 0 {
		t.Fatalf("free = %d, want 0", a.Free(dram))
	}
}

func TestPreferredOverflows(t *testing.T) {
	m := testMachine()
	a := NewAllocator(m)
	s := NewSpace(0)
	dram := m.DRAMNodes(0)[0]
	cxl := m.CXLNodes()[0]
	// Fill DRAM almost completely, leaving 2 pages.
	filler := NewSpace(0)
	if err := a.Alloc(filler, dram.Capacity-2*DefaultPageSize, Bind{Nodes: []*topology.Node{dram}}); err != nil {
		t.Fatal(err)
	}
	pol := Preferred{Primary: []*topology.Node{dram}, Fallback: []*topology.Node{cxl}}
	if err := a.Alloc(s, 5*DefaultPageSize, pol); err != nil {
		t.Fatal(err)
	}
	onDram, onCXL := 0, 0
	for i := range s.Pages {
		switch s.Pages[i].Node {
		case dram:
			onDram++
		case cxl:
			onCXL++
		}
	}
	if onDram != 2 || onCXL != 3 {
		t.Fatalf("placement dram=%d cxl=%d, want 2/3", onDram, onCXL)
	}
}

func TestInterleaveNMRatio(t *testing.T) {
	m := testMachine()
	a := NewAllocator(m)
	s := NewSpace(0)
	dram := m.DRAMNodes(0)[0]
	cxl := m.CXLNodes()[0]
	pol := InterleaveNM{Top: []*topology.Node{dram}, Low: []*topology.Node{cxl}, N: 3, M: 1}
	if err := a.Alloc(s, 400*DefaultPageSize, pol); err != nil {
		t.Fatal(err)
	}
	share := s.NodeShare()
	if math.Abs(share[dram]-0.75) > 0.01 {
		t.Fatalf("3:1 interleave dram share = %v, want 0.75", share[dram])
	}
	if math.Abs(share[cxl]-0.25) > 0.01 {
		t.Fatalf("3:1 interleave cxl share = %v, want 0.25", share[cxl])
	}
}

func TestInterleaveRoundRobinsWithinTier(t *testing.T) {
	m := testMachine()
	a := NewAllocator(m)
	s := NewSpace(0)
	cxls := m.CXLNodes()
	pol := InterleaveNM{Top: []*topology.Node{m.DRAMNodes(0)[0]}, Low: cxls, N: 1, M: 2}
	if err := a.Alloc(s, 300*DefaultPageSize, pol); err != nil {
		t.Fatal(err)
	}
	share := s.NodeShare()
	if math.Abs(share[cxls[0]]-share[cxls[1]]) > 0.02 {
		t.Fatalf("low tier not balanced: %v vs %v", share[cxls[0]], share[cxls[1]])
	}
}

func TestInterleaveBadConfig(t *testing.T) {
	m := testMachine()
	a := NewAllocator(m)
	s := NewSpace(0)
	if err := a.Alloc(s, DefaultPageSize, InterleaveNM{N: 0, M: 0}); err == nil {
		t.Fatal("want error for 0:0 ratio")
	}
	if err := a.Alloc(s, DefaultPageSize, InterleaveNM{N: 1, M: 1, Top: m.DRAMNodes(0)}); err == nil {
		t.Fatal("want error for empty low tier")
	}
}

func TestBindNoNodes(t *testing.T) {
	a := NewAllocator(testMachine())
	if err := a.Alloc(NewSpace(0), DefaultPageSize, Bind{}); err == nil {
		t.Fatal("want error for bind with no nodes")
	}
}

func TestFreeSpace(t *testing.T) {
	m := testMachine()
	a := NewAllocator(m)
	s := NewSpace(0)
	dram := m.DRAMNodes(0)[0]
	if err := a.Alloc(s, 10*DefaultPageSize, Bind{Nodes: []*topology.Node{dram}}); err != nil {
		t.Fatal(err)
	}
	a.FreeSpace(s)
	if len(s.Pages) != 0 {
		t.Fatal("space not truncated")
	}
	if a.Used(dram) != 0 {
		t.Fatalf("used = %d after free", a.Used(dram))
	}
}

func TestMigrate(t *testing.T) {
	m := testMachine()
	a := NewAllocator(m)
	s := NewSpace(0)
	dram := m.DRAMNodes(0)[0]
	cxl := m.CXLNodes()[0]
	if err := a.Alloc(s, DefaultPageSize, Bind{Nodes: []*topology.Node{dram}}); err != nil {
		t.Fatal(err)
	}
	if err := a.Migrate(s, 0, cxl); err != nil {
		t.Fatal(err)
	}
	if s.Pages[0].Node != cxl {
		t.Fatal("page did not move")
	}
	if a.Used(dram) != 0 || a.Used(cxl) != DefaultPageSize {
		t.Fatal("capacity accounting wrong after migrate")
	}
	// Self-migration is a no-op.
	if err := a.Migrate(s, 0, cxl); err != nil {
		t.Fatal(err)
	}
}

func TestMigrateNoCapacity(t *testing.T) {
	m := testMachine()
	a := NewAllocator(m)
	s := NewSpace(0)
	dram := m.DRAMNodes(0)[0]
	cxl := m.CXLNodes()[0]
	filler := NewSpace(0)
	if err := a.Alloc(filler, cxl.Capacity, Bind{Nodes: []*topology.Node{cxl}}); err != nil {
		t.Fatal(err)
	}
	if err := a.Alloc(s, DefaultPageSize, Bind{Nodes: []*topology.Node{dram}}); err != nil {
		t.Fatal(err)
	}
	if err := a.Migrate(s, 0, cxl); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v, want ErrNoCapacity", err)
	}
}

func TestTouchAndHeat(t *testing.T) {
	m := testMachine()
	a := NewAllocator(m)
	s := NewSpace(0)
	if err := a.Alloc(s, 4*DefaultPageSize, Bind{Nodes: []*topology.Node{m.DRAMNodes(0)[0]}}); err != nil {
		t.Fatal(err)
	}
	s.Touch(0, 10, 100)
	s.Touch(1, 30, 200)
	if s.Heat(0) != 10 || s.Heat(1) != 30 {
		t.Fatal("heat not accumulated")
	}
	if s.Pages[1].LastAccess != 200 {
		t.Fatal("recency not stamped")
	}
	s.DecayHeat(0.5)
	if s.Heat(0) != 5 || s.Heat(1) != 15 {
		t.Fatal("decay wrong")
	}
}

func TestDecayValidation(t *testing.T) {
	s := NewSpace(0)
	defer func() {
		if recover() == nil {
			t.Fatal("bad decay factor did not panic")
		}
	}()
	s.DecayHeat(1.5)
}

func TestHeatShare(t *testing.T) {
	m := testMachine()
	a := NewAllocator(m)
	s := NewSpace(0)
	dram := m.DRAMNodes(0)[0]
	cxl := m.CXLNodes()[0]
	pol := InterleaveNM{Top: []*topology.Node{dram}, Low: []*topology.Node{cxl}, N: 1, M: 1}
	if err := a.Alloc(s, 10*DefaultPageSize, pol); err != nil {
		t.Fatal(err)
	}
	// With no heat, HeatShare falls back to capacity share.
	hs := s.HeatShare()
	if math.Abs(hs[dram]-0.5) > 0.01 {
		t.Fatalf("cold heat share = %v, want 0.5", hs[dram])
	}
	// Heat up only DRAM pages.
	for i := range s.Pages {
		if s.Pages[i].Node == dram {
			s.Touch(i, 100, 1)
		}
	}
	hs = s.HeatShare()
	if hs[dram] < 0.99 {
		t.Fatalf("hot share = %v, want ≈1", hs[dram])
	}
}

func TestPageFor(t *testing.T) {
	m := testMachine()
	a := NewAllocator(m)
	s := NewSpace(0)
	if err := a.Alloc(s, 4*DefaultPageSize, Bind{Nodes: []*topology.Node{m.DRAMNodes(0)[0]}}); err != nil {
		t.Fatal(err)
	}
	if s.PageFor(0) != 0 || s.PageFor(DefaultPageSize) != 1 || s.PageFor(4*DefaultPageSize-1) != 3 {
		t.Fatal("PageFor mapping wrong")
	}
	if s.Bytes() != 4*DefaultPageSize {
		t.Fatalf("Bytes = %d", s.Bytes())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range offset did not panic")
		}
	}()
	s.PageFor(4 * DefaultPageSize)
}

// Property: interleave N:M share of the top tier ≈ N/(N+M) for any valid
// small ratio.
func TestPropertyInterleaveShares(t *testing.T) {
	m := testMachine()
	f := func(nRaw, mRaw uint8) bool {
		n, mm := int(nRaw%8), int(mRaw%8)
		if n+mm == 0 {
			return true
		}
		a := NewAllocator(m)
		s := NewSpace(0)
		pol := InterleaveNM{
			Top: []*topology.Node{m.DRAMNodes(0)[0]},
			Low: []*topology.Node{m.CXLNodes()[0]},
			N:   n, M: mm,
		}
		pages := 64 * (n + mm)
		if err := a.Alloc(s, uint64(pages)*DefaultPageSize, pol); err != nil {
			return false
		}
		share := s.NodeShare()[m.DRAMNodes(0)[0]]
		want := float64(n) / float64(n+mm)
		return math.Abs(share-want) < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: capacity accounting never goes negative or above capacity
// through any alloc/free/migrate sequence.
func TestPropertyCapacityInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		m := testMachine()
		a := NewAllocator(m)
		s := NewSpace(0)
		dram := m.DRAMNodes(0)[0]
		cxl := m.CXLNodes()[0]
		for _, op := range ops {
			switch op % 3 {
			case 0:
				_ = a.Alloc(s, uint64(op)*DefaultPageSize, Bind{Nodes: []*topology.Node{dram}})
			case 1:
				if len(s.Pages) > 0 {
					_ = a.Migrate(s, int(op)%len(s.Pages), cxl)
				}
			case 2:
				if op%7 == 0 {
					a.FreeSpace(s)
				}
			}
			for _, n := range m.Nodes {
				if a.Used(n) > n.Capacity {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
