package vmm

import (
	"math"
	"math/rand"
	"testing"

	"cxlsim/internal/topology"
)

// eagerSpace is the reference heat model the lazy implementation
// replaced: a plain per-page counter array with an O(pages) multiply
// sweep on every decay epoch.
type eagerSpace struct {
	heat []float64
}

func (e *eagerSpace) touch(page int, weight float64) { e.heat[page] += weight }

func (e *eagerSpace) decay(factor float64) {
	for i := range e.heat {
		e.heat[i] *= factor
	}
}

// TestLazyDecayMatchesEagerSweep drives a lazy Space and the eager
// reference through the same randomized interleaving of touches and
// decay epochs — including factor changes, which force the lazy path to
// materialize outstanding decay — and checks every page's heat agrees
// within 1e-9 at every decay boundary and at the end.
func TestLazyDecayMatchesEagerSweep(t *testing.T) {
	const pages = 256
	rng := rand.New(rand.NewSource(7))

	s := NewSpace(0)
	s.Pages = make([]Page, pages)
	ref := &eagerSpace{heat: make([]float64, pages)}

	factors := []float64{0.5, 0.5, 0.5, 0.9, 0.9, 0.25, 1, 0, 0.5}
	compare := func(step int) {
		t.Helper()
		for i := 0; i < pages; i++ {
			got, want := s.Heat(i), ref.heat[i]
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("step %d page %d: lazy heat %g, eager heat %g", step, i, got, want)
			}
		}
	}

	step := 0
	for _, f := range factors {
		// A burst of touches on a random subset: many pages skip whole
		// decay epochs, accumulating pending lazy decay.
		for j := 0; j < pages/4; j++ {
			pg := rng.Intn(pages)
			w := float64(1 + rng.Intn(8))
			s.Touch(pg, w, 0)
			ref.touch(pg, w)
			step++
		}
		s.DecayHeat(f)
		ref.decay(f)
		step++
		// Read a few pages between epochs (Heat is a mutating read that
		// advances the decay stamp — it must not double-apply decay).
		for j := 0; j < 8; j++ {
			pg := rng.Intn(pages)
			if math.Abs(s.Heat(pg)-ref.heat[pg]) > 1e-9 {
				t.Fatalf("step %d page %d: mid-epoch heat diverged", step, pg)
			}
		}
		compare(step)
	}

	// Let many epochs pile up with no reads at all, then compare: the
	// factor^Δepochs catch-up must match Δ eager sweeps.
	for k := 0; k < 20; k++ {
		s.DecayHeat(0.5)
		ref.decay(0.5)
	}
	compare(step + 20)

	// FlushHeat materializes everything; a second compare must still hold.
	s.FlushHeat()
	compare(step + 21)
}

// TestLazyDecayBitIdenticalSingleFactor: with one factor throughout (the
// steady epoch-loop case) the lazy catch-up is repeated multiplication —
// the same float ops in the same order as the eager sweep — so the match
// is exact, not just within tolerance.
func TestLazyDecayBitIdenticalSingleFactor(t *testing.T) {
	const pages = 64
	rng := rand.New(rand.NewSource(11))

	s := NewSpace(0)
	s.Pages = make([]Page, pages)
	ref := &eagerSpace{heat: make([]float64, pages)}

	for epoch := 0; epoch < 50; epoch++ {
		for j := 0; j < 16; j++ {
			pg := rng.Intn(pages)
			w := rng.Float64() * 10
			s.Touch(pg, w, 0)
			ref.touch(pg, w)
		}
		s.DecayHeat(0.5)
		ref.decay(0.5)
	}
	for i := 0; i < pages; i++ {
		if got, want := s.Heat(i), ref.heat[i]; got != want {
			t.Fatalf("page %d: lazy heat %x, eager heat %x — expected bit-identical", i, got, want)
		}
	}
}

// TestLateAllocatedPagesSkipPriorEpochs: pages allocated after decay
// epochs have passed must not have those epochs applied retroactively.
func TestLateAllocatedPagesSkipPriorEpochs(t *testing.T) {
	m := testMachine()
	a := NewAllocator(m)
	s := NewSpace(0)
	if err := a.Alloc(s, 4*s.PageSize, Bind{Nodes: []*topology.Node{m.DRAMNodes(0)[0]}}); err != nil {
		t.Fatal(err)
	}
	s.Touch(0, 8, 0)
	s.DecayHeat(0.5)
	s.DecayHeat(0.5)

	if err := a.Alloc(s, s.PageSize, Bind{Nodes: []*topology.Node{m.DRAMNodes(0)[0]}}); err != nil {
		t.Fatal(err)
	}
	late := len(s.Pages) - 1
	s.Touch(late, 4, 0)
	if got := s.Heat(late); got != 4 {
		t.Fatalf("late page heat = %g, want 4 (prior epochs must not apply)", got)
	}
	if got := s.Heat(0); got != 2 {
		t.Fatalf("old page heat = %g, want 2", got)
	}
}
