// Package mlc reimplements the measurement methodology of Intel's Memory
// Latency Checker over the simulated memory hierarchy (§3.1): for a given
// CPU→memory path and read:write mix it sweeps the injection rate from
// idle to past saturation and records the (bandwidth, loaded latency)
// curve — the exact data behind the paper's Figures 3 and 4.
//
// Like MLC, the sweep uses 64-byte accesses and a fixed thread count
// whose aggregate injection rate, not the thread count itself, determines
// memory-request concurrency.
package mlc

import (
	"fmt"

	"cxlsim/internal/memsim"
	"cxlsim/internal/par"
)

// Options configures a sweep.
type Options struct {
	// Threads is the number of injector threads (paper: 16). It bounds
	// the maximum offered load via per-thread concurrency.
	Threads int
	// AccessBytes is the access granularity (paper: 64).
	AccessBytes float64
	// Steps is the number of sweep points from near-idle to overdrive.
	Steps int
	// Overdrive is the multiple of path peak bandwidth offered at the
	// last sweep step (>1 exercises the saturated/receding regime).
	Overdrive float64
	// Parallel caps the worker goroutines solving sweep points (each
	// point is an independent open solve). 0 means GOMAXPROCS; 1 forces
	// serial. Results are index-aligned, so curves are identical at any
	// parallelism.
	Parallel int
}

// DefaultOptions mirrors the paper's MLC configuration.
func DefaultOptions() Options {
	return Options{Threads: 16, AccessBytes: 64, Steps: 40, Overdrive: 1.25}
}

func (o *Options) fill() {
	if o.Threads == 0 {
		o.Threads = 16
	}
	if o.AccessBytes == 0 {
		o.AccessBytes = 64
	}
	if o.Steps == 0 {
		o.Steps = 40
	}
	if o.Overdrive == 0 {
		o.Overdrive = 1.25
	}
	if o.Threads < 1 || o.Steps < 2 || o.Overdrive <= 0 || o.AccessBytes <= 0 {
		panic(fmt.Sprintf("mlc: invalid options %+v", *o))
	}
}

// Point is one sweep sample.
type Point struct {
	OfferedGBps  float64 // injection rate
	AchievedGBps float64 // delivered bandwidth
	LatencyNs    float64 // loaded per-access latency
}

// Curve is a full loaded-latency curve for one (path, mix) pair.
type Curve struct {
	PathName string
	Mix      memsim.Mix
	Points   []Point
}

// IdleLatency returns the first (lowest-load) latency sample.
func (c Curve) IdleLatency() float64 {
	if len(c.Points) == 0 {
		return 0
	}
	return c.Points[0].LatencyNs
}

// PeakBandwidth returns the maximum achieved bandwidth over the sweep.
func (c Curve) PeakBandwidth() float64 {
	max := 0.0
	for _, p := range c.Points {
		if p.AchievedGBps > max {
			max = p.AchievedGBps
		}
	}
	return max
}

// KneeUtilization estimates where latency takes off: the fraction of peak
// bandwidth at which loaded latency first exceeds 1.2× idle.
func (c Curve) KneeUtilization() float64 {
	idle := c.IdleLatency()
	peak := c.PeakBandwidth()
	if idle == 0 || peak == 0 {
		return 0
	}
	for _, p := range c.Points {
		if p.LatencyNs > idle*1.2 {
			return p.AchievedGBps / peak
		}
	}
	return 1
}

// LoadedLatency sweeps one path with one mix. Sweep points are
// independent open solves, resolved in parallel (opts.Parallel workers)
// with results index-aligned to the injection schedule, so the curve is
// identical at any parallelism.
func LoadedLatency(path *memsim.Path, mix memsim.Mix, opts Options) Curve {
	opts.fill()
	peak := path.PeakBandwidth(mix)
	curve := Curve{PathName: path.Name, Mix: mix, Points: make([]Point, opts.Steps)}
	pl := memsim.SinglePath(path)
	par.ForEach(opts.Steps, opts.Parallel, func(i int) {
		frac := 0.02 + (opts.Overdrive-0.02)*float64(i)/float64(opts.Steps-1)
		offered := frac * peak
		res, _ := memsim.SolveOpen([]memsim.OpenFlow{{Placement: pl, Mix: mix, Offered: offered}})
		curve.Points[i] = Point{
			OfferedGBps:  offered,
			AchievedGBps: res[0].Achieved,
			LatencyNs:    res[0].Latency,
		}
	})
	return curve
}

// SweepMixes produces the per-mix curve family for one path — one panel
// of Fig. 3. Curves are swept concurrently (on top of each curve's own
// per-point parallelism) and returned in mix order.
func SweepMixes(path *memsim.Path, mixes []memsim.Mix, opts Options) []Curve {
	out := make([]Curve, len(mixes))
	par.ForEach(len(mixes), opts.Parallel, func(i int) {
		out[i] = LoadedLatency(path, mixes[i], opts)
	})
	return out
}

// SweepPaths produces the per-path curve family for one mix — one panel
// of Fig. 4 (a–f), comparing distances at a fixed mix. Curves are swept
// concurrently and returned in path order.
func SweepPaths(paths []*memsim.Path, mix memsim.Mix, opts Options) []Curve {
	out := make([]Curve, len(paths))
	par.ForEach(len(paths), opts.Parallel, func(i int) {
		out[i] = LoadedLatency(paths[i], mix, opts)
	})
	return out
}
