// Package mlc reimplements the measurement methodology of Intel's Memory
// Latency Checker over the simulated memory hierarchy (§3.1): for a given
// CPU→memory path and read:write mix it sweeps the injection rate from
// idle to past saturation and records the (bandwidth, loaded latency)
// curve — the exact data behind the paper's Figures 3 and 4.
//
// Like MLC, the sweep uses 64-byte accesses and a fixed thread count
// whose aggregate injection rate, not the thread count itself, determines
// memory-request concurrency.
package mlc

import (
	"fmt"

	"cxlsim/internal/memsim"
)

// Options configures a sweep.
type Options struct {
	// Threads is the number of injector threads (paper: 16). It bounds
	// the maximum offered load via per-thread concurrency.
	Threads int
	// AccessBytes is the access granularity (paper: 64).
	AccessBytes float64
	// Steps is the number of sweep points from near-idle to overdrive.
	Steps int
	// Overdrive is the multiple of path peak bandwidth offered at the
	// last sweep step (>1 exercises the saturated/receding regime).
	Overdrive float64
}

// DefaultOptions mirrors the paper's MLC configuration.
func DefaultOptions() Options {
	return Options{Threads: 16, AccessBytes: 64, Steps: 40, Overdrive: 1.25}
}

func (o *Options) fill() {
	if o.Threads == 0 {
		o.Threads = 16
	}
	if o.AccessBytes == 0 {
		o.AccessBytes = 64
	}
	if o.Steps == 0 {
		o.Steps = 40
	}
	if o.Overdrive == 0 {
		o.Overdrive = 1.25
	}
	if o.Threads < 1 || o.Steps < 2 || o.Overdrive <= 0 || o.AccessBytes <= 0 {
		panic(fmt.Sprintf("mlc: invalid options %+v", *o))
	}
}

// Point is one sweep sample.
type Point struct {
	OfferedGBps  float64 // injection rate
	AchievedGBps float64 // delivered bandwidth
	LatencyNs    float64 // loaded per-access latency
}

// Curve is a full loaded-latency curve for one (path, mix) pair.
type Curve struct {
	PathName string
	Mix      memsim.Mix
	Points   []Point
}

// IdleLatency returns the first (lowest-load) latency sample.
func (c Curve) IdleLatency() float64 {
	if len(c.Points) == 0 {
		return 0
	}
	return c.Points[0].LatencyNs
}

// PeakBandwidth returns the maximum achieved bandwidth over the sweep.
func (c Curve) PeakBandwidth() float64 {
	max := 0.0
	for _, p := range c.Points {
		if p.AchievedGBps > max {
			max = p.AchievedGBps
		}
	}
	return max
}

// KneeUtilization estimates where latency takes off: the fraction of peak
// bandwidth at which loaded latency first exceeds 1.2× idle.
func (c Curve) KneeUtilization() float64 {
	idle := c.IdleLatency()
	peak := c.PeakBandwidth()
	if idle == 0 || peak == 0 {
		return 0
	}
	for _, p := range c.Points {
		if p.LatencyNs > idle*1.2 {
			return p.AchievedGBps / peak
		}
	}
	return 1
}

// LoadedLatency sweeps one path with one mix.
func LoadedLatency(path *memsim.Path, mix memsim.Mix, opts Options) Curve {
	opts.fill()
	peak := path.PeakBandwidth(mix)
	curve := Curve{PathName: path.Name, Mix: mix}
	pl := memsim.SinglePath(path)
	for i := 0; i < opts.Steps; i++ {
		frac := 0.02 + (opts.Overdrive-0.02)*float64(i)/float64(opts.Steps-1)
		offered := frac * peak
		res, _ := memsim.SolveOpen([]memsim.OpenFlow{{Placement: pl, Mix: mix, Offered: offered}})
		curve.Points = append(curve.Points, Point{
			OfferedGBps:  offered,
			AchievedGBps: res[0].Achieved,
			LatencyNs:    res[0].Latency,
		})
	}
	return curve
}

// SweepMixes produces the per-mix curve family for one path — one panel
// of Fig. 3.
func SweepMixes(path *memsim.Path, mixes []memsim.Mix, opts Options) []Curve {
	out := make([]Curve, 0, len(mixes))
	for _, m := range mixes {
		out = append(out, LoadedLatency(path, m, opts))
	}
	return out
}

// SweepPaths produces the per-path curve family for one mix — one panel
// of Fig. 4 (a–f), comparing distances at a fixed mix.
func SweepPaths(paths []*memsim.Path, mix memsim.Mix, opts Options) []Curve {
	out := make([]Curve, 0, len(paths))
	for _, p := range paths {
		out = append(out, LoadedLatency(p, mix, opts))
	}
	return out
}
