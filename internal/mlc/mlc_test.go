package mlc

import (
	"math"
	"testing"

	"cxlsim/internal/memsim"
	"cxlsim/internal/topology"
)

func paths(t *testing.T) (local, remote, cxl, cxlr *memsim.Path) {
	t.Helper()
	m := topology.TestbedSNC()
	local = m.PathFrom(0, m.DRAMNodes(0)[0])
	remote = m.PathFrom(1, m.DRAMNodes(0)[0])
	cxl = m.PathFrom(0, m.CXLNodes()[0])
	cxlr = m.PathFrom(1, m.CXLNodes()[0])
	return
}

func TestFig3aMMEMReadOnly(t *testing.T) {
	local, _, _, _ := paths(t)
	c := LoadedLatency(local, memsim.ReadOnly, DefaultOptions())
	if idle := c.IdleLatency(); math.Abs(idle-97)/97 > 0.1 {
		t.Errorf("MMEM idle latency = %.1f, want ≈97", idle)
	}
	if peak := c.PeakBandwidth(); math.Abs(peak-67)/67 > 0.02 {
		t.Errorf("MMEM read peak = %.1f, want ≈67", peak)
	}
	// §3.2: latency starts to significantly increase at 75–83% of
	// bandwidth utilization.
	if knee := c.KneeUtilization(); knee < 0.70 || knee > 0.90 {
		t.Errorf("MMEM knee at %.2f of peak, want within [0.70,0.90]", knee)
	}
}

func TestFig3aWriteBandwidthDip(t *testing.T) {
	local, _, _, _ := paths(t)
	ro := LoadedLatency(local, memsim.ReadOnly, DefaultOptions())
	wo := LoadedLatency(local, memsim.WriteOnly, DefaultOptions())
	if wo.PeakBandwidth() >= ro.PeakBandwidth() {
		t.Fatal("write-only peak must be below read-only peak")
	}
	if math.Abs(wo.PeakBandwidth()-54.6)/54.6 > 0.02 {
		t.Errorf("write-only peak = %.1f, want ≈54.6", wo.PeakBandwidth())
	}
}

func TestFig3cCXLCurve(t *testing.T) {
	_, _, cxl, _ := paths(t)
	c := LoadedLatency(cxl, memsim.Mix2to1, DefaultOptions())
	if idle := c.IdleLatency(); math.Abs(idle-250.42)/250.42 > 0.1 {
		t.Errorf("CXL idle = %.1f, want ≈250.42 (loaded at first point may add a little)", idle)
	}
	if peak := c.PeakBandwidth(); math.Abs(peak-56.7)/56.7 > 0.02 {
		t.Errorf("CXL 2:1 peak = %.1f, want ≈56.7", peak)
	}
}

func TestFig3dRemoteCXLHalvedBandwidth(t *testing.T) {
	_, remote, cxl, cxlr := paths(t)
	rc := LoadedLatency(cxlr, memsim.Mix2to1, DefaultOptions())
	if peak := rc.PeakBandwidth(); math.Abs(peak-20.4)/20.4 > 0.05 {
		t.Errorf("remote CXL peak = %.1f, want ≈20.4", peak)
	}
	// The 485 ns idle anchor is a read measurement; check the read-only sweep.
	roc := LoadedLatency(cxlr, memsim.ReadOnly, DefaultOptions())
	if idle := roc.IdleLatency(); math.Abs(idle-485)/485 > 0.1 {
		t.Errorf("remote CXL read idle = %.1f, want ≈485", idle)
	}
	// Much more severe drop than remote DDR (§3.2).
	rd := LoadedLatency(remote, memsim.Mix2to1, DefaultOptions())
	lc := LoadedLatency(cxl, memsim.Mix2to1, DefaultOptions())
	remoteDDRDrop := rd.PeakBandwidth() / LoadedLatency(paths3(t), memsim.Mix2to1, DefaultOptions()).PeakBandwidth()
	remoteCXLDrop := rc.PeakBandwidth() / lc.PeakBandwidth()
	if remoteCXLDrop >= remoteDDRDrop {
		t.Errorf("remote CXL drop (%.2f) should be more severe than remote DDR drop (%.2f)",
			remoteCXLDrop, remoteDDRDrop)
	}
}

func paths3(t *testing.T) *memsim.Path {
	local, _, _, _ := paths(t)
	return local
}

func TestFig4KneeShiftsLeftWithWrites(t *testing.T) {
	local, _, _, _ := paths(t)
	ro := LoadedLatency(local, memsim.ReadOnly, DefaultOptions())
	wo := LoadedLatency(local, memsim.WriteOnly, DefaultOptions())
	if wo.KneeUtilization() >= ro.KneeUtilization() {
		t.Errorf("knee should shift left with writes: read %.2f vs write %.2f",
			ro.KneeUtilization(), wo.KneeUtilization())
	}
}

func TestFig4RandomVsSequentialNeutral(t *testing.T) {
	// Fig. 4(g,h): no significant performance disparity.
	local, _, _, _ := paths(t)
	seq := LoadedLatency(local, memsim.ReadOnly, DefaultOptions())
	rnd := LoadedLatency(local, memsim.ReadOnly.WithPattern(memsim.Random), DefaultOptions())
	if math.Abs(seq.PeakBandwidth()-rnd.PeakBandwidth())/seq.PeakBandwidth() > 0.05 {
		t.Error("random vs sequential peak bandwidth differs >5%")
	}
	if rnd.IdleLatency() > seq.IdleLatency()*1.05 {
		t.Error("random idle latency penalty should be ≤5%")
	}
}

func TestCurveMonotoneLatency(t *testing.T) {
	local, _, _, _ := paths(t)
	for _, mix := range memsim.StandardMixes() {
		c := LoadedLatency(local, mix, DefaultOptions())
		prev := 0.0
		for i, p := range c.Points {
			if p.LatencyNs < prev-1e-9 {
				t.Fatalf("mix %s: latency decreased at point %d", mix.Label(), i)
			}
			prev = p.LatencyNs
		}
	}
}

func TestLatencySpikesNearSaturation(t *testing.T) {
	local, _, _, _ := paths(t)
	c := LoadedLatency(local, memsim.ReadOnly, DefaultOptions())
	last := c.Points[len(c.Points)-1]
	if last.LatencyNs < c.IdleLatency()*4 {
		t.Errorf("saturated latency %.0f should be ≥4× idle %.0f", last.LatencyNs, c.IdleLatency())
	}
}

func TestSweepHelpers(t *testing.T) {
	local, remote, _, _ := paths(t)
	mixCurves := SweepMixes(local, memsim.StandardMixes(), DefaultOptions())
	if len(mixCurves) != 5 {
		t.Fatalf("SweepMixes returned %d curves, want 5", len(mixCurves))
	}
	pathCurves := SweepPaths([]*memsim.Path{local, remote}, memsim.ReadOnly, DefaultOptions())
	if len(pathCurves) != 2 {
		t.Fatalf("SweepPaths returned %d curves, want 2", len(pathCurves))
	}
	if pathCurves[0].PathName == pathCurves[1].PathName {
		t.Fatal("curves should carry their path names")
	}
}

func TestOptionsDefaultsAndValidation(t *testing.T) {
	local, _, _, _ := paths(t)
	// Zero options fill to defaults and work.
	c := LoadedLatency(local, memsim.ReadOnly, Options{})
	if len(c.Points) != 40 {
		t.Fatalf("default steps = %d, want 40", len(c.Points))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid options did not panic")
		}
	}()
	LoadedLatency(local, memsim.ReadOnly, Options{Steps: 1, Threads: 1, AccessBytes: 1, Overdrive: 1})
}

func TestEmptyCurveAccessors(t *testing.T) {
	var c Curve
	if c.IdleLatency() != 0 || c.PeakBandwidth() != 0 || c.KneeUtilization() != 0 {
		t.Fatal("empty curve accessors should return 0")
	}
}

func BenchmarkLoadedLatencySweep(b *testing.B) {
	m := topology.TestbedSNC()
	local := m.PathFrom(0, m.DRAMNodes(0)[0])
	for i := 0; i < b.N; i++ {
		LoadedLatency(local, memsim.ReadOnly, DefaultOptions())
	}
}
