GO ?= go
BENCH_DATE := $(shell date +%Y%m%d)
BENCH_OUT ?= BENCH_$(BENCH_DATE).json

.PHONY: all build vet test race race-fault race-shard check bench bench-build bench-compare bench-baseline bench-compare-smoke report-smoke crash-matrix fuzz-smoke resp-smoke

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-fault is the focused race gate over the fault-injection and
# retry/degradation paths (the packages with fault-transition callbacks
# and atomic counters). A strict subset of `race`, kept separate so the
# reliability paths can be iterated on quickly and fail the gate first.
race-fault:
	$(GO) test -race ./internal/fault ./internal/kvstore ./internal/tiering

# race-shard is the focused race gate over the parallel simulation
# kernel: the sharded engine's epoch fan-out and the byte-identical
# determinism contracts in kvstore clusters and the LLM fleet. These
# are the only tests that run simulation goroutines concurrently.
race-shard:
	$(GO) test -race -run 'TestSharded|TestClusterByteIdentical|TestFleetByteIdentical' \
		./internal/sim ./internal/kvstore ./internal/llm

# check is the gate: vet, build, the reliability-path and sharded-kernel
# race subsets (fail fast), the full test suite under the race detector,
# a build-only smoke of the benchmarks (compiles every benchmark without
# running it, so bit-rot in bench code fails the gate cheaply), a smoke
# of the bench-compare tooling (parses the committed baseline without
# running any benchmark), and the report determinism smoke.
check: vet build race-fault race-shard race bench-build bench-compare-smoke report-smoke crash-matrix fuzz-smoke resp-smoke

# resp-smoke is the end-to-end serving gate: it builds the real cxlserve
# binary, starts it with the RESP front end and durable spill tier on
# ephemeral ports, drives a pipelined command mix over raw TCP asserting
# byte-exact replies and per-command /metrics, then SIGINTs and requires
# a clean graceful drain (spill tier closed exactly once).
resp-smoke:
	$(GO) test -run TestRESPSmoke -v ./cmd/cxlserve

# crash-matrix replays the seeded spill workload, crashing at a bounded
# stride of write/fsync boundaries (SPILL_CRASH_BOUNDARIES caps the
# sweep for the gate; unset it for the exhaustive matrix), plus the
# bit-flip-detection and recovery-determinism checks. Every crash must
# recover with no acknowledged write lost and none half-visible.
crash-matrix:
	SPILL_CRASH_BOUNDARIES=16 $(GO) test -run 'TestCrashMatrix|TestBitFlipQuarantined|TestRecoveryDeterministic' ./internal/spill

# fuzz-smoke runs the fuzzers briefly: the spill record decoder must
# never panic on hostile bytes and every record it accepts must
# re-encode byte-identically; the timeline differential fuzzer drives
# random schedule/cancel/step sequences through the timing wheel and
# the reference heap and fails on any ordering divergence; the RESP
# decoder fuzzer feeds hostile frames through the wire parser and
# requires bounded errors plus an EncodeCommand round-trip on every
# accepted command.
fuzz-smoke:
	$(GO) test -run=NoSuchTest -fuzz=FuzzRecordDecode -fuzztime=10s ./internal/spill
	$(GO) test -run=NoSuchTest -fuzz=FuzzTimelineDifferential -fuzztime=10s ./internal/sim
	$(GO) test -run=NoSuchTest -fuzz=FuzzRESPDecode -fuzztime=10s ./internal/resp

# bench records a benchstat-comparable baseline: 5 repetitions of every
# benchmark with allocation stats, captured to BENCH_<date>.json. Compare
# two baselines with `benchstat old new` (not vendored here).
bench:
	$(GO) test -bench=. -benchmem -count=5 ./... | tee $(BENCH_OUT)

# bench-build compiles test+benchmark code without executing any tests or
# benchmarks (-run with a pattern that matches nothing).
bench-build:
	$(GO) test -run=NoSuchTest -bench=NoSuchBench ./... > /dev/null

# The gate benchmarks: the paper-figure end-to-end runs whose hot loops
# this repo optimizes, the timing-wheel kernel microbenchmarks, and the
# sharded cluster run. Kept narrow so bench-compare stays a few minutes.
GATE_BENCH := BenchmarkFig8CXLOnlyKeyDB|BenchmarkFig10LLMInference|BenchmarkWheelSteadyState64|BenchmarkWheelSteadyState4096|BenchmarkWheelCancelHeavy|BenchmarkShardedYCSB
GATE_BENCH_PKGS := . ./internal/sim

# bench-compare reruns the gate benchmarks (count=5, median) and fails
# when any regresses ns/op more than 10% against the committed baseline,
# or when a baseline benchmark is missing from the run.
bench-compare:
	$(GO) test -run=NoSuchTest -bench='$(GATE_BENCH)' -benchmem -count=5 $(GATE_BENCH_PKGS) > /tmp/bench-compare.txt
	$(GO) run ./cmd/benchdiff -threshold 10 bench/BASELINE.txt /tmp/bench-compare.txt

# bench-baseline refreshes the committed baseline after an intentional
# performance change (commit the result).
bench-baseline:
	$(GO) test -run=NoSuchTest -bench='$(GATE_BENCH)' -benchmem -count=5 $(GATE_BENCH_PKGS) > bench/BASELINE.txt

# bench-compare-smoke exercises the comparison tool against the
# committed baseline without running any benchmark: it proves the
# baseline still parses and the tool builds, cheap enough for `check`.
bench-compare-smoke:
	$(GO) run ./cmd/benchdiff bench/BASELINE.txt bench/BASELINE.txt > /dev/null

# report-smoke builds cxlreport, renders the committed fixture run dumps,
# and fails on any byte difference from the committed golden report —
# the scenario report is deterministic by contract. Regenerate after an
# intentional report change with:
#   $(GO) test ./cmd/cxlreport -run TestGolden -update
report-smoke:
	$(GO) run ./cmd/cxlreport -o /tmp/report-smoke.html \
		cmd/cxlreport/testdata/healthy.json cmd/cxlreport/testdata/degraded.json
	cmp /tmp/report-smoke.html cmd/cxlreport/testdata/golden.html
