GO ?= go
BENCH_DATE := $(shell date +%Y%m%d)
BENCH_OUT ?= BENCH_$(BENCH_DATE).json

.PHONY: all build vet test race check bench bench-build

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the gate: vet, build, the full test suite under the race
# detector, and a build-only smoke of the benchmarks (compiles every
# benchmark without running it, so bit-rot in bench code fails the gate
# cheaply).
check: vet build race bench-build

# bench records a benchstat-comparable baseline: 5 repetitions of every
# benchmark with allocation stats, captured to BENCH_<date>.json. Compare
# two baselines with `benchstat old new` (not vendored here).
bench:
	$(GO) test -bench=. -benchmem -count=5 ./... | tee $(BENCH_OUT)

# bench-build compiles test+benchmark code without executing any tests or
# benchmarks (-run with a pattern that matches nothing).
bench-build:
	$(GO) test -run=NoSuchTest -bench=NoSuchBench ./... > /dev/null
