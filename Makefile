GO ?= go

.PHONY: all build vet test race check bench

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the gate: vet, build, and the full test suite under the race
# detector.
check: vet build race

bench:
	$(GO) test -bench=. -benchmem
