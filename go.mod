module cxlsim

go 1.22
