// Package cxlsim's root benchmark harness regenerates every table and
// figure in the paper's evaluation. Each benchmark prints the rows the
// paper reports under -v (`go test -v -bench=. -benchmem`); without -v
// the output is pure benchmark result lines, parseable by benchstat and
// cmd/benchdiff. The wall-clock numbers testing.B reports measure the
// simulator, while the printed tables carry the reproduced results.
// EXPERIMENTS.md records paper-vs-measured for each.
package cxlsim_test

import (
	"os"
	"testing"

	"cxlsim/internal/core"
	"cxlsim/internal/kvstore"
	"cxlsim/internal/memsim"
	"cxlsim/internal/tiering"
	"cxlsim/internal/topology"
	"cxlsim/internal/vmm"
	"cxlsim/internal/workload"
)

// report runs a core experiment once per benchmark (printing the table
// on the first iteration, under -v only — table output mid-benchmark
// splits the testing framework's result lines, which breaks
// benchstat/benchdiff parsing).
func report(b *testing.B, id string, opt core.Options) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := core.Run(id, opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			rep.WriteTable(os.Stdout)
		}
	}
}

// quickLater returns full fidelity on the first iteration and quick mode
// afterwards, so -benchtime doesn't multiply the heavyweight runs.
func opts(i int) core.Options {
	return core.Options{Quick: i > 0}
}

// BenchmarkFig3LoadedLatency regenerates Fig. 3: loaded-latency curves
// for MMEM / MMEM-r / CXL / CXL-r across read:write mixes.
func BenchmarkFig3LoadedLatency(b *testing.B) {
	report(b, "fig3", core.Options{})
}

// BenchmarkFig4DistanceComparison regenerates Fig. 4: per-mix distance
// comparison plus the random-pattern panels.
func BenchmarkFig4DistanceComparison(b *testing.B) {
	report(b, "fig4", core.Options{})
}

// BenchmarkFig5KeyDBYCSB regenerates Fig. 5: KeyDB YCSB throughput and
// latency across the seven Table-1 configurations.
func BenchmarkFig5KeyDBYCSB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := core.Run("fig5", opts(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			rep.WriteTable(os.Stdout)
		}
	}
}

// BenchmarkFig7SparkTPCH regenerates Fig. 7: TPC-H execution time and
// shuffle share across cluster configurations.
func BenchmarkFig7SparkTPCH(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := core.Run("fig7", opts(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			rep.WriteTable(os.Stdout)
		}
	}
}

// BenchmarkFig8CXLOnlyKeyDB regenerates Fig. 8: KeyDB YCSB-C bound
// entirely to CXL vs MMEM.
func BenchmarkFig8CXLOnlyKeyDB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := core.Run("fig8", opts(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			rep.WriteTable(os.Stdout)
		}
	}
}

// BenchmarkFig10LLMInference regenerates Fig. 10: serving rate vs thread
// count, per-backend bandwidth, and KV-cache bandwidth.
func BenchmarkFig10LLMInference(b *testing.B) {
	report(b, "fig10", core.Options{})
}

// BenchmarkTable2ProcessorSeries regenerates Table 2 with the
// provisioning-gap analysis.
func BenchmarkTable2ProcessorSeries(b *testing.B) {
	report(b, "table2", core.Options{})
}

// BenchmarkTable3CostModel regenerates Table 3 and the §6 worked example.
func BenchmarkTable3CostModel(b *testing.B) {
	report(b, "table3", core.Options{})
}

// BenchmarkSec43ElasticRevenue regenerates the §4.3 revenue analysis.
func BenchmarkSec43ElasticRevenue(b *testing.B) {
	report(b, "sec43", core.Options{})
}

// --- Ablation benches for the design choices DESIGN.md calls out ---

// BenchmarkInsightOffloadAblation quantifies the §3.4 insight: offloading
// 20% of a bandwidth-hungry read workload to CXL improves delivered
// bandwidth and latency even when MMEM still has ~30% headroom.
func BenchmarkInsightOffloadAblation(b *testing.B) {
	m := topology.TestbedSNC()
	mmem := m.PathFrom(0, m.DRAMNodes(0)[0])
	cxl := m.PathFrom(0, m.CXLNodes()[0])
	var only, offload memsim.FlowResult
	for i := 0; i < b.N; i++ {
		// Offered load past MMEM capacity: the regime where shedding 20%
		// to CXL relieves channel contention outright.
		r1, _ := memsim.SolveOpen([]memsim.OpenFlow{{
			Placement: memsim.SinglePath(mmem), Mix: memsim.ReadOnly, Offered: 90,
		}})
		r2, _ := memsim.SolveOpen([]memsim.OpenFlow{{
			Placement: memsim.Interleave(mmem, cxl, 4, 1), Mix: memsim.ReadOnly, Offered: 90,
		}})
		only, offload = r1[0], r2[0]
	}
	b.ReportMetric(only.Latency, "mmem-only-ns")
	b.ReportMetric(offload.Latency, "offload20-ns")
	if b.N > 0 && offload.Latency >= only.Latency {
		b.Fatalf("offload ablation inverted: %v >= %v", offload.Latency, only.Latency)
	}
}

// BenchmarkInsightPromotionUnderSaturation quantifies the §5.3 insight:
// promoting pages INTO an already bandwidth-saturated MMEM makes the
// workload slower — the latency increase outweighs the medium upgrade.
func BenchmarkInsightPromotionUnderSaturation(b *testing.B) {
	m := topology.TestbedSNC()
	mmem := m.PathFrom(0, m.DRAMNodes(0)[0])
	cxl := m.PathFrom(0, m.CXLNodes()[0])
	var before, after memsim.FlowResult
	for i := 0; i < b.N; i++ {
		// A workload near MMEM capacity with a 20% CXL slice absorbing overflow.
		r1, _ := memsim.SolveOpen([]memsim.OpenFlow{{
			Placement: memsim.Interleave(mmem, cxl, 4, 1), Mix: memsim.ReadOnly, Offered: 75,
		}})
		// A naive capacity-driven policy promotes the CXL slice into
		// MMEM: bandwidth demand concentrates and crosses the knee.
		r2, _ := memsim.SolveOpen([]memsim.OpenFlow{{
			Placement: memsim.SinglePath(mmem), Mix: memsim.ReadOnly, Offered: 75,
		}})
		before, after = r1[0], r2[0]
	}
	b.ReportMetric(before.Latency, "tiered-ns")
	b.ReportMetric(after.Latency, "promoted-ns")
	if b.N > 0 && after.Latency <= before.Latency {
		b.Fatalf("promotion-under-saturation ablation inverted")
	}
}

// BenchmarkAblationRSFFix models the §3.2 discussion: with the Remote
// Snoop Filter limitation fixed (next-gen platform), remote CXL bandwidth
// should approach remote-DDR levels.
func BenchmarkAblationRSFFix(b *testing.B) {
	m := topology.TestbedSNC()
	cxlNode := m.CXLNodes()[0]
	broken := m.PathFrom(1, cxlNode)
	// Future platform: same route without the RSF stage.
	fixed := memsim.NewPath("CXL-r-fixed", memsim.NewUPILink("upi2"), memsim.NewCXLDevice("cxl2"))
	var bwBroken, bwFixed float64
	for i := 0; i < b.N; i++ {
		bwBroken = broken.PeakBandwidth(memsim.Mix2to1)
		bwFixed = fixed.PeakBandwidth(memsim.Mix2to1)
	}
	b.ReportMetric(bwBroken, "rsf-GB/s")
	b.ReportMetric(bwFixed, "fixed-GB/s")
	if b.N > 0 && bwFixed < 2*bwBroken {
		b.Fatal("RSF fix should at least double cross-socket CXL bandwidth")
	}
}

// BenchmarkAblationHotPromoteRateLimit sweeps the promotion rate limit on
// a Zipfian workload: too low converges slowly, too high floods the
// memory system; the figure-of-merit is post-convergence fast-tier heat
// share.
func BenchmarkAblationHotPromoteRateLimit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, limitMB := range []uint64{8, 64, 512} {
			m := topology.Testbed()
			alloc := vmm.NewAllocator(m)
			space := vmm.NewSpace(0)
			dram := m.DRAMNodes(0)[0]
			cxlNode := m.CXLNodes()[0]
			fill := vmm.NewSpace(0)
			if err := alloc.Alloc(fill, dram.Capacity-256*vmm.DefaultPageSize,
				vmm.Bind{Nodes: []*topology.Node{dram}}); err != nil {
				b.Fatal(err)
			}
			pol := vmm.InterleaveNM{Top: []*topology.Node{dram}, Low: []*topology.Node{cxlNode}, N: 1, M: 1}
			if err := alloc.Alloc(space, 512*vmm.DefaultPageSize, pol); err != nil {
				b.Fatal(err)
			}
			d := &tiering.HotPromote{
				Tiers:          tiering.Tiers{Fast: []*topology.Node{dram}, Slow: []*topology.Node{cxlNode}},
				RateLimitBytes: limitMB << 20,
				AutoThreshold:  true,
			}
			gen := workload.NewZipfian(512, 7)
			for e := 0; e < 30; e++ {
				for k := 0; k < 20000; k++ {
					space.Touch(int(gen.Next()), 1, 0)
				}
				d.Tick(0, space, alloc)
				space.DecayHeat(0.5)
			}
		}
	}
}

// BenchmarkCXL2Pooling runs the §7 extension: pooled-capacity economics
// and noisy-neighbor interference on a CXL 2.0 multi-headed device.
func BenchmarkCXL2Pooling(b *testing.B) {
	report(b, "pool", core.Options{})
}

// BenchmarkShardedYCSB runs the 4-node KeyDB cluster on 4 shards: the
// end-to-end cost of the conservative-lookahead kernel including the
// per-epoch fan-out/merge. Output is byte-identical to a 1-shard run
// (see internal/kvstore cluster tests); this gates its wall-clock.
func BenchmarkShardedYCSB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := kvstore.RunCluster(kvstore.ClusterConfig{
			Nodes:      4,
			Shards:     4,
			Config:     kvstore.ConfInter11,
			Deploy:     kvstore.DeployOptions{SimKeys: 1 << 12},
			Mix:        workload.YCSBB,
			OpsPerNode: 2_000,
			Seed:       42,
			RemoteFrac: 0.15,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFlashEngine compares the analytic RocksDB cost model
// against the structural LSM tree behind KeyDB-FLASH: both must yield the
// same qualitative Fig. 5 conclusion (SSD spill well behind MMEM), with
// the LSM exposing real write amplification.
func BenchmarkAblationFlashEngine(b *testing.B) {
	run := func(useLSM bool) float64 {
		m := topology.Testbed()
		alloc := vmm.NewAllocator(m)
		st, err := kvstore.NewStore(m, alloc, kvstore.StoreConfig{
			WorkingSetBytes: 512 << 30, SimKeys: 1 << 14,
			MaxMemoryFrac: 0.6, Flash: true, UseLSM: useLSM,
			Policy: vmm.Bind{Nodes: m.DRAMNodes(0)},
		})
		if err != nil {
			b.Fatal(err)
		}
		res := kvstore.Run(st, alloc, kvstore.RunConfig{
			Mix: workload.YCSBA, Ops: 10_000, Seed: 5,
		})
		if useLSM {
			b.ReportMetric(st.LSMStats().WriteAmp, "write-amp")
		}
		return res.ThroughputOpsPerSec
	}
	var analytic, structural float64
	for i := 0; i < b.N; i++ {
		analytic = run(false)
		structural = run(true)
	}
	b.ReportMetric(analytic/1e3, "analytic-kops")
	b.ReportMetric(structural/1e3, "lsm-kops")
}
